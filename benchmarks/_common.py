"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md §4).  Default configurations are scaled down — fewer nodes,
shorter horizons — but preserve the paper's over-commitment ratio
(4 VMs x 8 VCPUs per 8-core node) and communication structure, so the
normalized-execution-time *shapes* match.  Set ``REPRO_FULL=1`` — or
pass ``--full-scale`` to pytest (the conftest maps it onto the same
environment switch) — for paper-scale sweeps (slow: hours; the
single-cell Table-I trace benchmark is the exception, sized to finish
inside a CI smoke job even at full scale).

Grid-shaped benchmarks declare their cells as ``RunSpec`` lists and
execute them through the shared sweep runner
(:mod:`repro.experiments.runner`): ``REPRO_JOBS=N`` fans the cells over N
worker processes (bit-identical to serial), and ``REPRO_BENCH_CACHE=1``
re-uses cached cells (off by default so benchmark timings stay honest).

Benchmarks run each simulation exactly once through
``benchmark.pedantic`` (a cloud-scale discrete-event run is seconds long
and deterministic; statistical repetition adds nothing) and print the
regenerated table rows so `pytest benchmarks/ --benchmark-only -s`
reproduces the paper's figures as text.  ``emit`` additionally writes
each table as ``BENCH_<name>.json`` under ``REPRO_BENCH_DIR`` (default
``benchmarks/results/``) so the perf trajectory is machine-readable.
"""

from __future__ import annotations

import json
import os
import re

from repro.experiments.reporting import format_table
from repro.experiments.runner import run_sweep

__all__ = [
    "full_scale",
    "fig_nodes",
    "fig_apps",
    "fig_slices_ms",
    "run_once",
    "run_grid",
    "emit",
]


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


def fig_nodes() -> list[int]:
    """Physical-node scales for the Fig. 1/10 sweeps."""
    return [2, 4, 8, 16, 32] if full_scale() else [2, 4]


def fig_apps() -> list[str]:
    """NPB kernels to sweep (all six at full scale)."""
    return ["lu", "is", "sp", "bt", "mg", "cg"] if full_scale() else ["lu", "is", "cg"]


def fig_slices_ms() -> list[float]:
    """Fig. 5 slice ladder (paper: 30 down to 0.1 ms)."""
    if full_scale():
        return [30, 24, 18, 12, 6, 1, 0.6, 0.3, 0.15, 0.1]
    return [30, 12, 6, 1, 0.3]


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-simulation benchmark exactly once, deterministically."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_grid(benchmark, specs, jobs=None, use_cache=None):
    """Execute a grid of ``RunSpec`` cells through the shared sweep runner.

    The whole sweep is timed as one pedantic round.  Any failed cell
    fails the benchmark with its structured error record.  Returns the
    ``RunResult`` list in spec order.
    """
    if jobs is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1"))
    if use_cache is None:
        use_cache = os.environ.get("REPRO_BENCH_CACHE", "0") == "1"
    results = benchmark.pedantic(
        lambda: run_sweep(specs, jobs=jobs, use_cache=use_cache),
        rounds=1,
        iterations=1,
    )
    failed = [r for r in results if not r.ok]
    assert not failed, f"{len(failed)} cells failed; first: {failed[0].error}"
    return results


def _bench_name(title: str) -> str:
    """Slug a table title into a BENCH_<name>.json file stem."""
    slug = re.sub(r"[^A-Za-z0-9]+", "_", title).strip("_").lower()
    return slug or "table"


def emit(title: str, headers, rows, name: str | None = None) -> None:
    """Print a regenerated paper table and write it as BENCH_<name>.json."""
    print()
    print(format_table(headers, rows, title=title))
    out_dir = os.environ.get("REPRO_BENCH_DIR", os.path.join(os.path.dirname(__file__), "results"))
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name or _bench_name(title)}.json")
    payload = {
        "title": title,
        "headers": list(headers),
        "rows": [list(r) for r in rows],
        "full_scale": full_scale(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
