"""Figure 9: how a uniform short slice affects non-parallel applications.

Paper: as the (globally applied) slice shrinks, sphinx3 slows (context
switches + cache), ping's RTT *improves* (more scheduling opportunities),
and stream degrades slightly.

Regenerates: the three metrics across a slice ladder under CR.
"""

import pytest

from repro.experiments.scenarios import run_small_mix

from _common import emit, full_scale, run_once

SLICES_MS = [30, 12, 6, 1, 0.3] if full_scale() else [30, 6, 0.3]
HORIZON = 12.0 if full_scale() else 6.0
RESULTS: dict[float, dict] = {}


@pytest.mark.parametrize("slice_ms", SLICES_MS)
def test_fig09_sweep(benchmark, slice_ms):
    RESULTS[slice_ms] = run_once(
        benchmark,
        run_small_mix,
        "CR",
        horizon_s=HORIZON,
        uniform_slice_ms=slice_ms,
    )


def test_fig09_report(benchmark):
    def report():
        rows = [
            (
                sm,
                RESULTS[sm]["sphinx3_mean_run_ns"] / 1e6,
                RESULTS[sm]["ping_mean_rtt_ns"] / 1e6,
                RESULTS[sm]["stream_bandwidth_Bps"] / 1e9,
            )
            for sm in SLICES_MS
        ]
        emit(
            "Figure 9 — non-parallel apps vs uniform slice (CR)",
            ["slice (ms)", "sphinx3 run (ms)", "ping RTT (ms)", "stream (GB/s)"],
            rows,
        )
        return rows

    rows = run_once(benchmark, report)
    longest, shortest = rows[0], rows[-1]
    # sphinx3 declines with very short slices
    assert shortest[1] > longest[1]
    # ping RTT improves with shorter slices
    assert shortest[2] < longest[2]
    # stream loses bandwidth to extra cache flushes
    assert shortest[3] < longest[3] * 1.02
