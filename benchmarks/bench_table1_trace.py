"""Table I: the LLNL Atlas job-size distribution and the paper's virtual
cluster mix derived from it.

Regenerates: (a) the exact Section IV-B2 configuration (one 256-VCPU VC,
two 128s, three 64s, one 32, three 16s, 30 independents over 128 VMs) and
(b) a synthesized scaled-down mix whose size distribution follows
Table I.
"""

import collections

from repro.experiments.scenarios import run_table1_cell
from repro.sim.rng import SimRNG
from repro.workloads.traces import ATLAS_TABLE1, paper_vc_mix, synthesize_vc_mix

from _common import emit, full_scale, run_once


def test_table1_paper_mix(benchmark):
    mix = run_once(benchmark, paper_vc_mix)
    emit(
        "Table I — paper VC mix (8-VCPU VMs)",
        ["VC sizes (VCPUs)", "independent VMs", "total VMs"],
        [(",".join(map(str, mix.cluster_sizes_vcpus)), mix.independent_vms, mix.total_vms)],
    )
    assert mix.total_vms == 128
    assert sorted(mix.cluster_sizes_vcpus, reverse=True) == [
        256, 128, 128, 64, 64, 64, 32, 16, 16, 16,
    ]


def test_table1_synthesis_follows_distribution(benchmark):
    def synth():
        counts = collections.Counter()
        for seed in range(200):
            mix = synthesize_vc_mix(128, 8, SimRNG(seed), min_vcpus=16, max_vcpus=256)
            for s in mix.cluster_sizes_vcpus:
                counts[s] += 1
        return counts

    counts = run_once(benchmark, synth)
    total = sum(counts.values())
    rows = [(s, counts.get(s, 0) / total) for s in sorted(ATLAS_TABLE1) if s >= 16]
    emit("Table I — synthesized size frequencies (200 draws)", ["VCPUs", "fraction"], rows)
    # small sizes must be drawn more often than large ones, per Table I
    freq = dict(rows)
    assert freq[16] > freq[256]
    assert freq[64] > freq[32]  # Table I: 12.6% vs 4.5%


def test_table1_trace_cell(benchmark):
    """Simulate one cell of the paper's 256-core (32-node) Table-I
    platform under ATC — the configuration the fast-path engine work
    targets.  At ``--full-scale`` the horizon is long enough for every
    virtual cluster to complete rounds; the default keeps a short slice
    of the same 1024-VCPU world so the plain benchmark run stays quick.
    """
    horizon_s = 2.0 if full_scale() else 0.5
    r = run_once(benchmark, run_table1_cell, scheduler="ATC", seed=0, horizon_s=horizon_s)
    assert r["n_nodes"] == 32
    assert r["n_vms"] == 128
    assert r["total_vcpus"] == 1024
    rows = [
        (vc["vc"], vc["n_vms"], vc["app"], vc["rounds"])
        for vc in r["vcs"]
    ]
    rows.append(("independents (30 VMs)", 30, "lu/is", r["independent_rounds"]))
    emit(
        f"Table I — 256-core trace cell, ATC, {horizon_s:.1f} virtual s "
        f"({r['events']:,} events)",
        ["virtual cluster", "VMs", "app", "rounds done"],
        rows,
        name="table1_trace_cell",
    )
    if full_scale():
        # every VC must have made visible progress at the full horizon
        assert sum(vc["rounds"] for vc in r["vcs"]) >= 5
