"""Table I: the LLNL Atlas job-size distribution and the paper's virtual
cluster mix derived from it.

Regenerates: (a) the exact Section IV-B2 configuration (one 256-VCPU VC,
two 128s, three 64s, one 32, three 16s, 30 independents over 128 VMs) and
(b) a synthesized scaled-down mix whose size distribution follows
Table I.
"""

import collections

from repro.sim.rng import SimRNG
from repro.workloads.traces import ATLAS_TABLE1, paper_vc_mix, synthesize_vc_mix

from _common import emit, run_once


def test_table1_paper_mix(benchmark):
    mix = run_once(benchmark, paper_vc_mix)
    emit(
        "Table I — paper VC mix (8-VCPU VMs)",
        ["VC sizes (VCPUs)", "independent VMs", "total VMs"],
        [(",".join(map(str, mix.cluster_sizes_vcpus)), mix.independent_vms, mix.total_vms)],
    )
    assert mix.total_vms == 128
    assert sorted(mix.cluster_sizes_vcpus, reverse=True) == [
        256, 128, 128, 64, 64, 64, 32, 16, 16, 16,
    ]


def test_table1_synthesis_follows_distribution(benchmark):
    def synth():
        counts = collections.Counter()
        for seed in range(200):
            mix = synthesize_vc_mix(128, 8, SimRNG(seed), min_vcpus=16, max_vcpus=256)
            for s in mix.cluster_sizes_vcpus:
                counts[s] += 1
        return counts

    counts = run_once(benchmark, synth)
    total = sum(counts.values())
    rows = [(s, counts.get(s, 0) / total) for s in sorted(ATLAS_TABLE1) if s >= 16]
    emit("Table I — synthesized size frequencies (200 draws)", ["VCPUs", "fraction"], rows)
    # small sizes must be drawn more often than large ones, per Table I
    freq = dict(rows)
    assert freq[16] > freq[256]
    assert freq[64] > freq[32]  # Table I: 12.6% vs 4.5%
