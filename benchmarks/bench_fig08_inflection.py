"""Figure 8: the short-slice performance inflection point (class C).

Paper: execution time does not keep falling as the slice shrinks —
spinlock latency keeps decreasing but LLC misses from the extra context
switches eventually dominate (inflection ~0.2 ms for lu.C).

Regenerates: per-app rows of (slice, execution time, LLC miss rate,
context switches) for short slices, and locates each app's inflection.

Known deviation (see EXPERIMENTS.md): our inflection sits at ~0.5 ms,
about 2x to the right of the paper's, because the simulator's wake path
saturates the benefit of sub-millisecond slices slightly earlier.
"""

import pytest

from repro.experiments.scenarios import run_slice_sweep

from _common import emit, full_scale, run_once

SLICES_MS = [2, 1, 0.5, 0.4, 0.3, 0.2, 0.1, 0.03]
APPS = ["lu", "is", "sp", "bt", "mg", "cg"] if full_scale() else ["lu", "cg"]
RESULTS: dict[str, dict] = {}


@pytest.mark.parametrize("app", APPS)
def test_fig08_sweep(benchmark, app):
    RESULTS[app] = run_once(
        benchmark,
        run_slice_sweep,
        app,
        SLICES_MS,
        rounds=2,
        warmup_rounds=1,
        npb_class="C",
    )


def test_fig08_report(benchmark):
    def report():
        inflections = {}
        for app, r in RESULTS.items():
            rows = [
                (
                    row["slice_ms"],
                    row["mean_round_ns"] / 1e6,
                    row["miss_rate_per_ms"],
                    row["context_switches"],
                )
                for row in r["rows"]
            ]
            emit(
                f"Figure 8 — {app}.C: performance vs short slices",
                ["slice (ms)", "exec time (ms)", "LLC misses / busy-ms", "ctx switches"],
                rows,
            )
            best = min(rows, key=lambda t: t[1])
            inflections[app] = (best[0], rows)
            print(f"  {app}.C inflection (best slice): {best[0]} ms")
        return inflections

    inflections = run_once(benchmark, report)
    for app, (best_slice, rows) in inflections.items():
        # an interior optimum exists: both shrinking further and growing
        # the slice from the optimum cost performance
        slices = [s for s, *_ in rows]
        assert best_slice not in (slices[0], slices[-1]), (
            f"{app}: no interior inflection (best={best_slice})"
        )
        # LLC pressure grows as the slice shrinks
        miss_rates = [m for _, _, m, _ in rows]
        assert miss_rates[-2] > miss_rates[0]
        # context switches grow monotonically as the slice shrinks
        ctx = [c for *_, c in rows]
        assert ctx[-1] > ctx[0]
