"""Adversarial tenancy: do the hardening knobs recover the victim?

Extension benchmark (no paper figure; DESIGN.md §15): a parallel victim
cluster shares each node with yield-theft and tickle-storm attacker VMs
(repro.workloads.attacks).  Every cell runs on the *vulnerable*
substrate (tick-sampled accounting), so the clean/attacked pairs isolate
exactly what the attackers cause:

* ``unhardened`` — stock knobs: deterministic tick phase, exact-grid
  sampling, no BOOST rate limit, no slice floor;
* ``hardened``   — ``deboost_on_yield`` + per-VM BOOST rate limit +
  randomized tick phase, and on ATC the host slice floor clamp.

Each (scheduler, hardening) pair runs clean and attacked at two scales
(single node, and two nodes with the victim cluster spanning them).
Regenerates: victim slowdown (attacked / clean mean round), thief gain
(CPU consumed / CPU debited; > 1 means stolen time), and the slowdown
fraction hardening recovers.  Asserts, at both scales and under both
credit and ATC: the unhardened attacker profits (gain > 1), and
hardening claws back at least half of the victim slowdown.
"""

import pytest

from repro.experiments.runner import RunSpec

from _common import emit, full_scale, run_grid, run_once

SCALES = {
    "1-node": dict(n_nodes=1, horizon_s=8.0 if full_scale() else 4.0),
    "2-node": dict(n_nodes=2, horizon_s=12.0 if full_scale() else 6.0),
}
RESULTS: dict[str, dict] = {}


def _specs(scale: str) -> list[RunSpec]:
    return [
        RunSpec(
            "attack",
            dict(
                scheduler=sched,
                hardened=hardened,
                attack=attack,
                seed=0,
                **SCALES[scale],
            ),
            label=f"{scale}:{sched}:{'hard' if hardened else 'open'}:"
            f"{'atk' if attack else 'clean'}",
        )
        for sched in ("CR", "ATC")
        for hardened in (False, True)
        for attack in (False, True)
    ]


@pytest.mark.parametrize("scale", list(SCALES))
def test_attack_cells(benchmark, scale):
    results = run_grid(benchmark, _specs(scale))
    for r in results:
        v = r.value
        RESULTS[(scale, v["scheduler"], v["hardened"], v["attack"])] = v


def test_attack_hardening_report(benchmark):
    def report():
        rows = []
        for scale in SCALES:
            for sched in ("CR", "ATC"):
                slow = {}
                gain = {}
                for hardened in (False, True):
                    clean = RESULTS[(scale, sched, hardened, False)]
                    atk = RESULTS[(scale, sched, hardened, True)]
                    slow[hardened] = (
                        atk["victim_mean_round_ns"] / clean["victim_mean_round_ns"]
                    )
                    gain[hardened] = atk["thief"]["gain"]
                recovered = (slow[False] - slow[True]) / (slow[False] - 1.0)
                rows.append((
                    scale,
                    sched,
                    f"{slow[False]:.3f}",
                    f"{slow[True]:.3f}",
                    f"{recovered:.3f}",
                    f"{gain[False]:.3f}",
                    f"{gain[True]:.3f}",
                ))
        emit(
            "Attack hardening — victim slowdown and thief gain, "
            "clean vs attacked (tick-sampled accounting everywhere)",
            ["scale", "scheduler", "slowdown open", "slowdown hard",
             "recovered", "thief gain open", "thief gain hard"],
            rows,
            name="attack_hardening",
        )
        return rows

    rows = run_once(benchmark, report)
    for scale, sched, s_open, s_hard, rec, g_open, g_hard in rows:
        # The unhardened scheduler is exploitable: the thief banks more
        # CPU than it is debited, and the victim visibly slows down.
        # (``float("inf") > 1.0`` — an uncaught thief also counts.)
        assert float(g_open) > 1.0, (scale, sched, g_open)
        assert float(s_open) > 1.0, (scale, sched, s_open)
        # Hardening must recover at least half of the victim slowdown
        # and take the thief's free lunch away.
        assert float(rec) >= 0.5, (scale, sched, rec)
        assert float(g_hard) <= 1.1, (scale, sched, g_hard)
