"""DFRS comparator: cluster-level fractional allocation vs ATC, on one axis.

Extension benchmark (no paper figure).  The paper accelerates parallel
VMs by *per-host* adaptive time-slice control (ATC); the DFRS line of
work (Stillwell/Vivien/Casanova) instead solves a *cluster-level*
fractional allocation — per-VM caps and weights maximizing the minimum
yield — and enforces it through the hypervisor scheduler.  This bench
places both, and their combination, on one normalized axis at two
scales:

* ``baseline`` — plain Credit (CR), no control plane (the 1.0 mark);
* ``atc``      — the paper's adaptive time-slice scheduler;
* ``dfrs``     — CR plus the DFRS cap/weight controller;
* ``hybrid``   — ATC plus the DFRS controller (cluster caps over the
  paper's per-host slices);
* ``idle``     — CR plus a constructed-but-disabled controller
  (``solve_every=0``), the bit-identity control cell (small scale only).

Regenerates: normalized parallel round time per cell (baseline = 1 at
each scale).  Asserted invariants:

* at BOTH scales the hybrid is no worse than the better single approach
  within ``HYBRID_TOL`` (caps add a little enforcement overhead when the
  per-host scheduler is already optimal — the tolerance documents that
  overhead bound) and strictly beats the worse one;
* the idle cell is bit-identical to the baseline, event count included.
"""

import pytest

from repro.experiments.scenarios import run_dfrs_compare

from _common import emit, full_scale, run_once

#: Hybrid may trail the better single approach by at most 2% — the
#: measured cap-enforcement overhead is ~0.2-0.5%; anything past 2%
#: means the caps are throttling what ATC accelerates (the failure mode
#: cap renormalization used to cause).
HYBRID_TOL = 1.02

SMALL = dict(horizon_s=30.0 if full_scale() else 10.0)
LARGE = dict(
    n_nodes=6,
    n_clusters=4,
    vms_per_cluster=3,
    n_nonparallel=2,
    horizon_s=24.0 if full_scale() else 8.0,
)
SCALES = {"small": SMALL, "large": LARGE}

MODES = ["baseline", "atc", "dfrs", "hybrid"]
CELLS = [("small", m) for m in MODES + ["idle"]] + [("large", m) for m in MODES]

RESULTS: dict[tuple[str, str], dict] = {}


@pytest.mark.parametrize("scale,mode", CELLS)
def test_dfrs_cell(benchmark, scale, mode):
    RESULTS[(scale, mode)] = run_once(
        benchmark, run_dfrs_compare, mode=mode, seed=0, **SCALES[scale]
    )


def test_dfrs_compare_report(benchmark):
    def report():
        rows = []
        for scale, mode in CELLS:
            r = RESULTS[(scale, mode)]
            base = RESULTS[(scale, "baseline")]["parallel_mean_round_ns"]
            d = r.get("dfrs") or {}
            rows.append((
                f"{scale}/{mode}",
                r["parallel_mean_round_ns"] / base,
                r["parallel_mean_round_ns"] / 1e6,
                r["np_mean_run_ns"] / 1e6,
                d.get("solves", 0),
                d.get("caps_applied", 0),
                round(d.get("last_min_yield", 1.0), 3),
            ))
        emit(
            "DFRS comparator — normalized parallel round time (baseline = 1)",
            ["scale/mode", "normalized round", "round ms", "sphinx3 ms",
             "solves", "caps", "min yield"],
            rows,
            name="dfrs_compare",
        )
        return {r[0]: r for r in rows}

    rows = run_once(benchmark, report)

    for scale in SCALES:
        atc = rows[f"{scale}/atc"][1]
        dfrs = rows[f"{scale}/dfrs"][1]
        hybrid = rows[f"{scale}/hybrid"][1]
        # Both single approaches must actually help over plain Credit...
        assert atc < 1.0 and dfrs < 1.0, scale
        # ...and the hybrid composes: no worse (within the documented
        # enforcement-overhead tolerance) than the better of the two,
        # strictly better than the worse.
        assert hybrid <= min(atc, dfrs) * HYBRID_TOL, scale
        assert hybrid < max(atc, dfrs), scale
        # The cluster controller really ran in the cells that enable it.
        assert rows[f"{scale}/dfrs"][4] > 0 and rows[f"{scale}/hybrid"][4] > 0

    # Idle DFRS layer: bit-identical to absence, event count included.
    base = RESULTS[("small", "baseline")]
    idle = RESULTS[("small", "idle")]
    assert idle["events"] == base["events"]
    assert idle["parallel_mean_round_ns"] == base["parallel_mean_round_ns"]
    assert idle["np_mean_run_ns"] == base["np_mean_run_ns"]
    assert idle["dfrs"]["solves"] == 0
