"""Figure 12: parallel applications in the mixed (parallel + non-parallel)
tenancy scenario.

Paper: ATC(30ms) best; DSS is *inferior to CS* here (the opposite of the
parallel-only Fig. 11) because latency-insensitive VMs keep long slices
under DSS and delay the parallel VMs queued behind them; VS trails DSS.

Regenerates: mean normalized parallel round time per approach, including
both ATC variants.
"""

import math

import pytest

from repro.experiments.scenarios import run_type_b_mixed

from _common import emit, full_scale, run_once

SCHEDS = ["CR", "BS", "CS", "DSS", "VS", "ATC"]
N_NODES = 32 if full_scale() else 6
HORIZON = 30.0 if full_scale() else 8.0
RESULTS: dict[str, dict] = {}


@pytest.mark.parametrize("sched", SCHEDS)
def test_fig12_run(benchmark, sched):
    RESULTS[sched] = run_once(
        benchmark, run_type_b_mixed, sched, n_nodes=N_NODES, horizon_s=HORIZON, seed=12
    )


def test_fig12_atc6(benchmark):
    RESULTS["ATC(6ms)"] = run_once(
        benchmark,
        run_type_b_mixed,
        "ATC",
        n_nodes=N_NODES,
        horizon_s=HORIZON,
        seed=12,
        atc_np_slice_ms=6.0,
    )


def _mean_parallel(r) -> float:
    vals = [vc["mean_round_ns"] for vc in r["vcs"] if math.isfinite(vc["mean_round_ns"])]
    return sum(vals) / len(vals) if vals else float("nan")


def test_fig12_report(benchmark):
    def report():
        base = _mean_parallel(RESULTS["CR"])
        rows = [(s, _mean_parallel(RESULTS[s]) / base) for s in [*SCHEDS, "ATC(6ms)"]]
        emit(
            "Figure 12 — parallel apps in mixed tenancy: normalized vs CR",
            ["approach", "mean normalized round time"],
            rows,
        )
        return dict(rows)

    rows = run_once(benchmark, report)
    # ATC is the best approach for the parallel applications
    assert rows["ATC"] <= min(v for k, v in rows.items() if k not in ("ATC", "ATC(6ms)"))
    assert rows["ATC"] < 0.7
