"""Figure 4: the 11-step cross-VM packet path and its four scheduling-wait
overhead sources.

Regenerates: per-hop mean latency of instrumented probe messages between
two VMs on different hosts while parallel load runs.  Three variants
separate the mechanisms:

* ``CR`` — stock credit: the boost path keeps an idle receiver's waits
  around the ratelimit, yet scheduling waits still dominate the wire;
* ``CR/no-boost (30ms)`` — without wake boosting every overhead source
  becomes a run-queue wait bounded by the slices of the VMs ahead
  (the paper's ``sum(TimeSlice_i)`` analysis);
* ``CR/no-boost (0.3ms)`` — the same waits shrink with the slice, the
  effect ATC exploits.
"""

import pytest

from repro.experiments.scenarios import run_packet_path_probe
from repro.schedulers.credit import CreditParams

from _common import emit, full_scale, run_once

RESULTS: dict[str, dict] = {}
N_PROBES = 200 if full_scale() else 50

CASES = {
    "CR": dict(),
    "no-boost 30ms": dict(sched_params=CreditParams(boost=False)),
    "no-boost 0.3ms": dict(sched_params=CreditParams(boost=False), uniform_slice_ms=0.3),
}


@pytest.mark.parametrize("case", list(CASES))
def test_fig04_probe(benchmark, case):
    RESULTS[case] = run_once(
        benchmark, run_packet_path_probe, "CR", n_probes=N_PROBES, **CASES[case]
    )


def test_fig04_report(benchmark):
    def report():
        hops = (
            "mean_netback_tx_wait_ns",
            "mean_wire_ns",
            "mean_netback_rx_wait_ns",
            "mean_consume_wait_ns",
            "mean_end_to_end_ns",
        )
        rows = []
        for hop in hops:
            rows.append(
                (
                    hop.replace("mean_", "").replace("_ns", ""),
                    *(RESULTS[c][hop] / 1e3 for c in CASES),
                )
            )
        emit(
            "Figure 4 — cross-VM packet path hops (us)",
            ["hop", *CASES],
            rows,
        )
        return {r[0]: dict(zip(CASES, r[1:])) for r in rows}

    rows = run_once(benchmark, report)
    assert all(RESULTS[c]["probes"] > 0 for c in CASES)
    # scheduling waits dominate the wire under stock CR with 30 ms slices
    sched_wait = rows["consume_wait"]["CR"] + rows["netback_rx_wait"]["CR"]
    assert sched_wait > rows["wire"]["CR"]
    # without boost, the waits explode at 30 ms slices...
    assert rows["end_to_end"]["no-boost 30ms"] > 2 * rows["end_to_end"]["CR"]
    # ...and shrink dramatically when every slice ahead in the queue is short
    assert rows["end_to_end"]["no-boost 0.3ms"] < 0.2 * rows["end_to_end"]["no-boost 30ms"]
    # the wire itself is slice-independent
    wires = list(rows["wire"].values())
    assert max(wires) < 3 * min(wires)
