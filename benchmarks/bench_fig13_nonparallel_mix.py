"""Figure 13: non-parallel applications (bonnie++, stream, web server) in
the mixed tenancy scenario, every approach.

Paper: bonnie++ is roughly unaffected by any approach; stream loses a
little under CS and ATC(6ms); the web server collapses under CS (~35% of
CR) but improves under VS / DSS / ATC(6ms) (higher scheduling frequency).

Regenerates: the three metrics normalized to CR.
"""

import pytest

from repro.experiments.scenarios import run_type_b_mixed

from _common import emit, full_scale, run_once

SCHEDS = ["CR", "BS", "CS", "DSS", "VS", "ATC"]
N_NODES = 32 if full_scale() else 6
HORIZON = 30.0 if full_scale() else 8.0
RESULTS: dict[str, dict] = {}


@pytest.mark.parametrize("sched", SCHEDS)
def test_fig13_run(benchmark, sched):
    RESULTS[sched] = run_once(
        benchmark, run_type_b_mixed, sched, n_nodes=N_NODES, horizon_s=HORIZON, seed=13
    )


def test_fig13_atc6(benchmark):
    RESULTS["ATC(6ms)"] = run_once(
        benchmark,
        run_type_b_mixed,
        "ATC",
        n_nodes=N_NODES,
        horizon_s=HORIZON,
        seed=13,
        atc_np_slice_ms=6.0,
    )


def test_fig13_report(benchmark):
    def report():
        cr = RESULTS["CR"]
        rows = []
        for s in [*SCHEDS, "ATC(6ms)"]:
            r = RESULTS[s]
            rows.append(
                (
                    s,
                    r["bonnie_throughput_Bps"] / cr["bonnie_throughput_Bps"],
                    r["stream_bandwidth_Bps"] / cr["stream_bandwidth_Bps"],
                    cr["webserver_mean_response_ns"] / r["webserver_mean_response_ns"],
                )
            )
        emit(
            "Figure 13 — non-parallel apps, normalized to CR (higher = better)",
            ["approach", "bonnie++ tput", "stream bw", "web responsiveness"],
            rows,
        )
        return {r[0]: r[1:] for r in rows}

    rows = run_once(benchmark, report)
    # bonnie++ roughly unaffected everywhere
    assert all(v[0] > 0.45 for v in rows.values())
    # web server suffers under CS...
    assert rows["CS"][2] < rows["CR"][2]
    # ...and ATC(30ms) does not hurt it
    assert rows["ATC"][2] > 0.8 * rows["CR"][2]
