"""Figure 2: Co-Scheduling's impact on non-parallel applications.

Paper (Section II-A2 platform): under CS, ping RTT is ~1.75x CR's,
sphinx3 runs ~1.11x longer, stream loses a little bandwidth, bonnie++ is
roughly unaffected.

Regenerates: the four non-parallel metrics under CR and CS, normalized.
"""

import pytest

from repro.experiments.scenarios import run_small_mix

from _common import emit, full_scale, run_once

RESULTS: dict[str, dict] = {}
HORIZON = 20.0 if full_scale() else 6.0


@pytest.mark.parametrize("sched", ["CR", "CS"])
def test_fig02_mix(benchmark, sched):
    RESULTS[sched] = run_once(benchmark, run_small_mix, sched, horizon_s=HORIZON)


def test_fig02_report(benchmark):
    def report():
        cr, cs = RESULTS["CR"], RESULTS["CS"]
        rows = [
            ("ping RTT (higher=worse)", cs["ping_mean_rtt_ns"] / cr["ping_mean_rtt_ns"]),
            ("sphinx3 run time (higher=worse)", cs["sphinx3_mean_run_ns"] / cr["sphinx3_mean_run_ns"]),
            ("stream bandwidth (lower=worse)", cs["stream_bandwidth_Bps"] / cr["stream_bandwidth_Bps"]),
            ("bonnie++ throughput (lower=worse)", cs["bonnie_throughput_Bps"] / cr["bonnie_throughput_Bps"]),
        ]
        emit("Figure 2 — non-parallel apps under CS, normalized to CR", ["metric", "CS / CR"], rows)
        return dict(rows)

    rows = run_once(benchmark, report)
    # paper shapes: ping and sphinx3 degrade, stream mildly, bonnie ~flat
    assert rows["ping RTT (higher=worse)"] > 1.2
    assert rows["sphinx3 run time (higher=worse)"] > 1.05
    assert rows["stream bandwidth (lower=worse)"] < 1.05
    assert rows["bonnie++ throughput (lower=worse)"] > 0.6
