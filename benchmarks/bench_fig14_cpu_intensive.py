"""Figure 14: CPU-intensive SPEC applications (gcc, bzip2, sphinx3) in the
mixed tenancy scenario.

Paper: CS and ATC(6ms) degrade CPU-intensive apps (preemption / context
switches); BS, VS, DSS and ATC(30ms) approximate CR.

Regenerates: per-app normalized run times for every approach.
"""

import pytest

from repro.experiments.scenarios import run_type_b_mixed

from _common import emit, full_scale, run_once

SCHEDS = ["CR", "BS", "CS", "DSS", "VS", "ATC"]
N_NODES = 32 if full_scale() else 6
HORIZON = 30.0 if full_scale() else 8.0
RESULTS: dict[str, dict] = {}


@pytest.mark.parametrize("sched", SCHEDS)
def test_fig14_run(benchmark, sched):
    RESULTS[sched] = run_once(
        benchmark, run_type_b_mixed, sched, n_nodes=N_NODES, horizon_s=HORIZON, seed=14
    )


def test_fig14_atc6(benchmark):
    RESULTS["ATC(6ms)"] = run_once(
        benchmark,
        run_type_b_mixed,
        "ATC",
        n_nodes=N_NODES,
        horizon_s=HORIZON,
        seed=14,
        atc_np_slice_ms=6.0,
    )


def test_fig14_report(benchmark):
    def report():
        cr = RESULTS["CR"]
        rows = []
        for s in [*SCHEDS, "ATC(6ms)"]:
            r = RESULTS[s]
            rows.append(
                (
                    s,
                    r["gcc_mean_run_ns"] / cr["gcc_mean_run_ns"],
                    r["bzip2_mean_run_ns"] / cr["bzip2_mean_run_ns"],
                    r["sphinx3_mean_run_ns"] / cr["sphinx3_mean_run_ns"],
                )
            )
        emit(
            "Figure 14 — CPU-intensive apps, run time normalized to CR (1.0 = unaffected)",
            ["approach", "gcc", "bzip2", "sphinx3"],
            rows,
        )
        return {r[0]: r[1:] for r in rows}

    rows = run_once(benchmark, report)
    # ATC with the default non-parallel slice approximates CR
    assert all(v < 1.25 for v in rows["ATC"])
    # ATC(6ms) visibly costs CPU-bound apps more than ATC(30ms)
    assert sum(rows["ATC(6ms)"]) > sum(rows["ATC"])
