"""Figure 3: lock-holder preemption makes spinlock latency a multiple of
the time slice.

Regenerates: the lock waiter's spin latency (in units of the slice) for a
deterministic LHP scenario at several slice lengths — the figure's
latency of "3 L_TS" generalizes to 'a few slices', shrinking linearly as
the slice shrinks.
"""

from repro.sim.units import MSEC

from _common import emit, run_once

from tests.conftest import add_guest_vm, make_node_world


def lhp_wait(slice_ns: int) -> int:
    from repro.guest.process import compute, lock
    from repro.guest.spinlock import SpinLock

    sim, cluster, vmms = make_node_world(n_nodes=1, n_pcpus=2)
    vmm = vmms[0]
    vm = add_guest_vm(vmm, 2, name="par", is_parallel=True)
    vm.slice_ns = slice_ns
    competitors = [add_guest_vm(vmm, 2, name=f"c{i}") for i in range(2)]
    for cvm in competitors:
        cvm.slice_ns = slice_ns

    lk = SpinLock("fig3")
    holder = vm.kernel.add_process()
    waiter = vm.kernel.add_process()

    def holder_prog():
        yield lock(lk, 3 * slice_ns // 2)  # preempted mid-critical-section

    def waiter_prog():
        yield compute(10_000)
        yield lock(lk, 1_000)

    def hog():
        while True:
            yield compute(10 * MSEC)

    holder.load_program(holder_prog())
    waiter.load_program(waiter_prog())
    for cvm in competitors:
        for _ in range(2):
            p = cvm.kernel.add_process()
            p.load_program(hog())
            p.start()
    holder.start()
    waiter.start()
    sim.run(until=5_000 * MSEC)
    assert waiter.done
    return waiter.total_spin_ns


def test_fig03_lhp_latency(benchmark):
    def sweep():
        rows = []
        for sm in (10, 5, 1):
            wait = lhp_wait(sm * MSEC)
            rows.append((sm, wait / 1e6, wait / (sm * MSEC)))
        emit(
            "Figure 3 — LHP spinlock latency vs time slice",
            ["slice (ms)", "waiter spin latency (ms)", "latency / slice"],
            rows,
        )
        return rows

    rows = run_once(benchmark, sweep)
    # latency spans multiple slices in every case...
    assert all(ratio >= 2 for _, _, ratio in rows)
    # ...so absolute latency shrinks with the slice
    waits = [w for _, w, _ in rows]
    assert waits == sorted(waits, reverse=True)
