"""Figure 5: execution time and spinlock latency vs time slice.

Paper (Section II-B): shortening the slice from 30 ms toward 0.1 ms
monotonically reduces spinlock latency and improves every application
(up to ~10x), with Pearson correlation between the two above 0.9.

The (app x slice) grid is declared as ``RunSpec`` cells and executed
through the shared sweep runner (``REPRO_JOBS=N`` parallelizes it).

Regenerates: per-app rows of (slice, execution time, avg spin latency)
plus the per-app Pearson coefficient.
"""

from repro.experiments.runner import RunSpec
from repro.metrics.summary import pearson

from _common import emit, fig_apps, fig_slices_ms, run_grid, run_once

SPECS = [
    RunSpec(
        "slice_sweep",
        dict(app_name=app, slice_ms_values=[sm], rounds=2, warmup_rounds=1),
        label=f"fig05:{app}@{sm}ms",
    )
    for app in fig_apps()
    for sm in fig_slices_ms()
]

RESULTS: dict[str, list[dict]] = {}


def test_fig05_sweep(benchmark):
    for r in run_grid(benchmark, SPECS):
        rows = RESULTS.setdefault(r.spec.params["app_name"], [])
        rows.extend(r.value["rows"])


def test_fig05_report(benchmark):
    def report():
        out = {}
        for app, sweep_rows in RESULTS.items():
            rows = [
                (row["slice_ms"], row["mean_round_ns"] / 1e6, row["avg_spin_ns"] / 1e6)
                for row in sweep_rows
            ]
            emit(
                f"Figure 5 — {app}: performance & spinlock latency vs slice",
                ["slice (ms)", "exec time (ms)", "avg spin latency (ms)"],
                rows,
                name=f"fig05_{app}",
            )
            times = [t for _, t, _ in rows]
            spins = [s for _, _, s in rows]
            out[app] = (times, spins, pearson(spins, times))
            print(f"  {app}: pearson(spin, time) = {out[app][2]:.3f}")
        return out

    out = run_once(benchmark, report)
    for app, (times, spins, corr) in out.items():
        # spin latency decreases monotonically with the slice
        assert spins == sorted(spins, reverse=True), app
        # performance improves substantially from 30 ms to the shortest
        assert times[-1] < times[0], app
        # the paper's correlation claim
        assert corr > 0.9, app
