"""Benchmark-suite conftest: make the sibling ``_common`` module importable
and default to one-shot (pedantic) timing for whole-simulation runs."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))  # for tests.conftest helpers


def pytest_addoption(parser):
    parser.addoption(
        "--full-scale",
        action="store_true",
        default=False,
        help="run paper-scale grids (equivalent to REPRO_FULL=1): all six NPB "
        "kernels, 2-32 nodes, the full Fig. 5 slice ladder, and the "
        "256-core Table-I trace cell at its full horizon",
    )


def pytest_configure(config):
    if config.getoption("--full-scale", default=False):
        # _common.full_scale() and every grid helper read the environment,
        # so the flag also reaches sweep worker subprocesses.
        os.environ["REPRO_FULL"] = "1"
