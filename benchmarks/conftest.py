"""Benchmark-suite conftest: make the sibling ``_common`` module importable
and default to one-shot (pedantic) timing for whole-simulation runs."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))  # for tests.conftest helpers
