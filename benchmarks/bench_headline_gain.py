"""Headline claim (abstract / Section IV): ATC obtains 1.5-10x performance
gains for parallel applications over CR and the other approaches.

The (app x approach) grid is declared as ``RunSpec`` cells and executed
through the shared sweep runner (``REPRO_JOBS=N`` parallelizes it).

Regenerates: ATC's speedup factor over CR, CS and BS for each NPB kernel
at the default scale, and checks the 1.5-10x band against CR.
"""

from repro.experiments.runner import RunSpec

from _common import emit, fig_apps, full_scale, run_grid, run_once

SCHEDS = ["CR", "CS", "BS", "ATC"]
N_NODES = 8 if full_scale() else 2

SPECS = [
    RunSpec(
        "type_a",
        dict(app_name=app, scheduler=sched, n_nodes=N_NODES, rounds=2, warmup_rounds=1),
        label=f"headline:{app}/{sched}",
    )
    for app in fig_apps()
    for sched in SCHEDS
]

RESULTS: dict[tuple, float] = {}


def test_headline_grid(benchmark):
    for r in run_grid(benchmark, SPECS):
        p = r.spec.params
        assert r.value["all_done"], f"{p['app_name']}/{p['scheduler']} incomplete"
        RESULTS[(p["app_name"], p["scheduler"])] = r.value["mean_round_ns"]


def test_headline_report(benchmark):
    def report():
        rows = []
        for app in fig_apps():
            atc = RESULTS[(app, "ATC")]
            rows.append(
                (
                    app,
                    RESULTS[(app, "CR")] / atc,
                    RESULTS[(app, "CS")] / atc,
                    RESULTS[(app, "BS")] / atc,
                )
            )
        emit(
            "Headline — ATC speedup factors (x) per application",
            ["app", "vs CR", "vs CS", "vs BS"],
            rows,
            name="headline_gain",
        )
        return {r[0]: r[1:] for r in rows}

    rows = run_once(benchmark, report)
    for app, (vs_cr, vs_cs, vs_bs) in rows.items():
        assert 1.5 <= vs_cr <= 12.0, f"{app}: vs CR {vs_cr:.2f}x outside the paper band"
        assert vs_cs > 1.0 and vs_bs > 1.0, app
