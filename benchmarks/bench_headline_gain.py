"""Headline claim (abstract / Section IV): ATC obtains 1.5-10x performance
gains for parallel applications over CR and the other approaches.

Regenerates: ATC's speedup factor over CR, CS and BS for each NPB kernel
at the default scale, and checks the 1.5-10x band against CR.
"""

import pytest

from repro.experiments.scenarios import run_type_a

from _common import emit, fig_apps, full_scale, run_once

SCHEDS = ["CR", "CS", "BS", "ATC"]
N_NODES = 8 if full_scale() else 2
RESULTS: dict[tuple, float] = {}


@pytest.mark.parametrize("sched", SCHEDS)
@pytest.mark.parametrize("app", fig_apps())
def test_headline_cell(benchmark, app, sched):
    r = run_once(benchmark, run_type_a, app, sched, N_NODES, rounds=2, warmup_rounds=1)
    assert r["all_done"]
    RESULTS[(app, sched)] = r["mean_round_ns"]


def test_headline_report(benchmark):
    def report():
        rows = []
        for app in fig_apps():
            atc = RESULTS[(app, "ATC")]
            rows.append(
                (
                    app,
                    RESULTS[(app, "CR")] / atc,
                    RESULTS[(app, "CS")] / atc,
                    RESULTS[(app, "BS")] / atc,
                )
            )
        emit(
            "Headline — ATC speedup factors (x) per application",
            ["app", "vs CR", "vs CS", "vs BS"],
            rows,
        )
        return {r[0]: r[1:] for r in rows}

    rows = run_once(benchmark, report)
    for app, (vs_cr, vs_cs, vs_bs) in rows.items():
        assert 1.5 <= vs_cr <= 12.0, f"{app}: vs CR {vs_cr:.2f}x outside the paper band"
        assert vs_cs > 1.0 and vs_bs > 1.0, app
