"""Extension: the NPB kernels beyond the paper's six.

``ep`` (embarrassingly parallel) is the falsification control: it has *no*
synchronization, so no scheduler — ATC included — should change its
execution time materially.  ``ft`` (3-D FFT) is the most
communication-bound kernel and should gain at least as much as ``is``.
"""

import pytest

from repro.experiments.scenarios import run_type_a

from _common import emit, run_once

RESULTS: dict[tuple, float] = {}


@pytest.mark.parametrize("sched", ["CR", "ATC"])
@pytest.mark.parametrize("app", ["ep", "ft", "is"])
def test_extended_cell(benchmark, app, sched):
    r = run_once(benchmark, run_type_a, app, sched, 2, rounds=2, warmup_rounds=1)
    assert r["all_done"]
    RESULTS[(app, sched)] = r["mean_round_ns"]


def test_extended_report(benchmark):
    def report():
        rows = [
            (app, RESULTS[(app, "ATC")] / RESULTS[(app, "CR")])
            for app in ("ep", "ft", "is")
        ]
        emit(
            "Extension — ep/ft under ATC, normalized to CR",
            ["app", "ATC / CR"],
            rows,
        )
        return dict(rows)

    rows = run_once(benchmark, report)
    # the control case: no synchronization -> no meaningful ATC effect
    assert 0.9 <= rows["ep"] <= 1.1, rows["ep"]
    # the FFT transposes gain at least as much as the paper's is kernel
    assert rows["ft"] <= rows["is"] + 0.1
    assert rows["ft"] < 0.75
