"""Figure 1: Co-Scheduling's scalability problem.

Paper: the normalized execution time of ``lu`` under CS (vs CR) *rises*
as the virtual cluster spans more hosts — CS gangs VCPUs per host but
the cluster's VMs stay unsynchronized across hosts.

Regenerates: normalized CS execution time at each cluster scale.
Expected shape: CS < 1 everywhere, increasing with the number of nodes.
"""

import pytest

from repro.experiments.scenarios import run_type_a

from _common import emit, fig_nodes, run_once

RESULTS: dict[int, dict[str, float]] = {}


@pytest.mark.parametrize("n_nodes", fig_nodes())
@pytest.mark.parametrize("sched", ["CR", "CS"])
def test_fig01_lu_scaling(benchmark, sched, n_nodes):
    r = run_once(
        benchmark,
        run_type_a,
        "lu",
        sched,
        n_nodes,
        rounds=2,
        warmup_rounds=1,
    )
    assert r["all_done"], f"{sched}@{n_nodes} did not finish in the horizon"
    RESULTS.setdefault(n_nodes, {})[sched] = r["mean_round_ns"]


def test_fig01_report(benchmark):
    def report():
        rows = []
        for n in sorted(RESULTS):
            if {"CR", "CS"} <= set(RESULTS[n]):
                rows.append((n, RESULTS[n]["CS"] / RESULTS[n]["CR"]))
        emit(
            "Figure 1 — lu: normalized execution time of CS vs CR by cluster scale",
            ["nodes (VMs per VC)", "CS / CR"],
            rows,
        )
        return rows

    rows = run_once(benchmark, report)
    assert rows, "parametrized benches did not run"
    # CS helps at every scale but the advantage erodes with scale
    assert all(v < 1.0 for _, v in rows)
    if len(rows) >= 2:
        assert rows[-1][1] >= rows[0][1] - 0.05
